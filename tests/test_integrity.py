"""Tests for the integrity subsystem: digests, validators, guards, audit."""

import json

import numpy as np
import pytest

from repro.core.pipeline import RttSeries
from repro.flows.traffic import CityPair
from repro.integrity import (
    Column,
    InputValidationError,
    InvariantViolation,
    LATITUDE,
    TableSpec,
    check_allocation,
    check_graph,
    check_rtt_series,
    digest_bytes,
    digest_file,
    quarantine_file,
    quarantine_reasons,
    rtt_lower_bound_ms,
    set_strict,
    strict_checks,
    strict_enabled,
    validate_latlon_arrays,
    verify_tree,
)
from repro.network.graph import ConnectivityMode


class TestDigest:
    def test_format(self):
        assert digest_bytes(b"abc").startswith("sha256:")

    def test_file_matches_bytes(self, tmp_path):
        payload = b"x" * (3 << 20) + b"tail"  # multiple streaming chunks
        path = tmp_path / "f.bin"
        path.write_bytes(payload)
        assert digest_file(path) == digest_bytes(payload)

    def test_sensitive_to_single_bit(self):
        assert digest_bytes(b"\x00") != digest_bytes(b"\x01")


class TestValidators:
    SPEC = TableSpec(
        name="t",
        columns=(
            Column("name", kind="str"),
            Column("lat", **LATITUDE),
            Column("count", kind="int", min_value=1),
        ),
        unique=("name",),
    )

    def test_valid_rows_pass(self):
        assert self.SPEC.validate([("a", 10.0, 3), ("b", -89.5, 1)]) == 2

    def test_out_of_range_names_row_and_column(self):
        with pytest.raises(InputValidationError) as excinfo:
            self.SPEC.validate([("a", 10.0, 3), ("b", 91.0, 1)])
        err = excinfo.value
        assert (err.source, err.row, err.column) == ("t", 1, "lat")

    def test_nan_rejected(self):
        with pytest.raises(InputValidationError, match="non-finite"):
            self.SPEC.validate([("a", float("nan"), 1)])

    def test_duplicate_key_names_first_row(self):
        with pytest.raises(InputValidationError, match="first seen at row 0"):
            self.SPEC.validate([("a", 1.0, 1), ("a", 2.0, 2)])

    def test_non_integer_count_rejected(self):
        with pytest.raises(InputValidationError, match="integer"):
            self.SPEC.validate([("a", 1.0, 1.5)])

    def test_mapping_rows_with_missing_column(self):
        with pytest.raises(InputValidationError, match="missing column"):
            self.SPEC.validate([{"name": "a", "lat": 1.0}])

    def test_latlon_arrays_flag_offending_row(self):
        with pytest.raises(InputValidationError, match="row 1.*lon_deg"):
            validate_latlon_arrays([0.0, 1.0], [0.0, 181.0], source="s")

    def test_embedded_tables_are_valid(self):
        # The shipped data passes its own gate (the real regression guard).
        from repro.ground.aircraft import _validate_air_tables
        from repro.ground.cities import load_cities

        _validate_air_tables()
        assert len(load_cities(50)) == 50


class TestStrictMode:
    def test_suite_runs_strict(self):
        assert strict_enabled()  # conftest autouse fixture

    def test_context_restores(self):
        with strict_checks(False):
            assert not strict_enabled()
            with strict_checks(True):
                assert strict_enabled()
            assert not strict_enabled()
        assert strict_enabled()

    def test_set_strict_returns_previous(self):
        assert set_strict(True) is True  # suite already strict


def _series(rtt, times=None):
    rtt = np.asarray(rtt, dtype=float)
    times = np.arange(rtt.shape[1], dtype=float) if times is None else times
    return RttSeries(mode=ConnectivityMode.BP_ONLY, times_s=times, rtt_ms=rtt)


class TestRttGuards:
    PAIRS = [CityPair(a=0, b=1, distance_m=1_000_000.0)]

    def test_clean_series_passes(self):
        check_rtt_series(_series([[10.0, np.inf]]), self.PAIRS)

    def test_nan_rejected(self):
        with pytest.raises(InvariantViolation, match="NaN"):
            check_rtt_series(_series([[np.nan, 1.0]]))

    def test_negative_rejected(self):
        with pytest.raises(InvariantViolation, match="negative"):
            check_rtt_series(_series([[-1.0, 1.0]]))

    def test_faster_than_light_rejected(self):
        bound = float(rtt_lower_bound_ms(np.array([1_000_000.0]))[0])
        with pytest.raises(InvariantViolation, match="speed-of-light"):
            check_rtt_series(_series([[bound * 0.5, bound * 2]]), self.PAIRS)

    def test_bound_is_below_great_circle_rtt(self):
        # The chord bound must not false-positive on a fiber-like path
        # that follows the surface at c.
        from repro.constants import SPEED_OF_LIGHT

        distance = 15_000_000.0  # nearly antipodal
        surface_rtt = 2e3 * distance / SPEED_OF_LIGHT
        assert float(rtt_lower_bound_ms(np.array([distance]))[0]) < surface_rtt

    def test_real_sweep_passes(self, tiny_scenario):
        from repro.core.pipeline import compute_rtt_series

        series = compute_rtt_series(tiny_scenario, ConnectivityMode.HYBRID)
        check_rtt_series(series, tiny_scenario.pairs)


class TestGraphGuards:
    def test_real_graphs_pass(self, tiny_bp_graph, tiny_hybrid_graph):
        check_graph(tiny_bp_graph)
        check_graph(tiny_hybrid_graph)

    def test_edge_out_of_range_rejected(self, tiny_bp_graph):
        import dataclasses

        edges = np.asarray(tiny_bp_graph.edges).copy()
        edges[0, 0] = tiny_bp_graph.num_nodes + 5
        bad = dataclasses.replace(tiny_bp_graph, edges=edges)
        with pytest.raises(InvariantViolation, match="outside"):
            check_graph(bad)


class TestAllocationGuards:
    def test_clean_allocation_passes(self):
        check_allocation(
            np.array([1.0, 2.0]), np.array([3.0]), np.array([3.0])
        )

    def test_overloaded_link_rejected(self):
        with pytest.raises(InvariantViolation, match="capacity not conserved"):
            check_allocation(
                np.array([5.0]), np.array([5.0]), np.array([3.0])
            )

    def test_negative_rate_rejected(self):
        with pytest.raises(InvariantViolation, match="negative rate"):
            check_allocation(
                np.array([-1.0]), np.array([0.0]), np.array([3.0])
            )

    def test_maxmin_runs_its_own_guard_under_strict(self):
        from repro.flows.maxmin import max_min_fair_allocation

        result = max_min_fair_allocation(
            [np.array([0]), np.array([0, 1])],
            np.array([10.0, 4.0]),
        )
        assert result.total_rate > 0  # guard ran (strict) and passed


class TestQuarantine:
    def test_move_and_reason(self, tmp_path):
        victim = tmp_path / "bad.npz"
        victim.write_bytes(b"junk")
        target = quarantine_file(victim, "digest mismatch", recorded="a", actual="b")
        assert not victim.exists()
        assert target.read_bytes() == b"junk"
        (record,) = quarantine_reasons(tmp_path)
        assert record["reason"] == "digest mismatch"
        assert record["recorded"] == "a"

    def test_repeat_quarantine_gets_new_slot(self, tmp_path):
        for _ in range(2):
            victim = tmp_path / "bad.npz"
            victim.write_bytes(b"junk")
            quarantine_file(victim, "again")
        names = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
        assert "bad.npz" in names and "bad.npz.1" in names

    def test_missing_file_is_not_an_error(self, tmp_path):
        assert quarantine_file(tmp_path / "gone.npz", "x") is None


class TestVerifyTree:
    def test_empty_dir_passes(self, tmp_path):
        report = verify_tree(tmp_path)
        assert report.ok
        assert "PASSED" in report.format()

    def test_missing_dir_fails(self, tmp_path):
        assert not verify_tree(tmp_path / "absent").ok

    def test_malformed_result_json_flagged(self, tmp_path):
        (tmp_path / "r.json").write_text(json.dumps({"kind": "result"}))
        report = verify_tree(tmp_path)
        assert any(v.code == "bad-result" for v in report.violations)

    def test_unknown_kind_ignored(self, tmp_path):
        (tmp_path / "other.json").write_text(json.dumps({"kind": "mystery"}))
        assert verify_tree(tmp_path).ok

    def test_saved_series_roundtrip_passes(self, tmp_path):
        from repro.persistence import save_rtt_series

        save_rtt_series(_series([[1.0, np.inf]]), tmp_path / "s.npz")
        report = verify_tree(tmp_path)
        assert report.ok and report.checked.get("npz series") == 1

    def test_nan_series_flagged(self, tmp_path):
        from repro.persistence import save_rtt_series

        save_rtt_series(_series([[np.nan, 1.0]]), tmp_path / "s.npz")
        report = verify_tree(tmp_path)
        assert [v.code for v in report.violations] == ["invalid-rtt"]

    def test_quarantine_contents_not_reflagged(self, tmp_path):
        qdir = tmp_path / "quarantine"
        qdir.mkdir()
        (qdir / "snap_00000.npz").write_bytes(b"known bad")
        assert verify_tree(tmp_path).ok


class TestPersistenceValidation:
    def test_foreign_npz_rejected(self, tmp_path):
        from repro.persistence import load_rtt_series

        np.savez(tmp_path / "x.npz", other=np.zeros(3))
        with pytest.raises(ValueError, match="missing array"):
            load_rtt_series(tmp_path / "x.npz")

    def test_shape_mismatch_rejected(self, tmp_path):
        from repro.persistence import load_rtt_series

        np.savez(
            tmp_path / "x.npz",
            mode=np.array("bp"),
            times_s=np.zeros(3),
            rtt_ms=np.zeros((2, 2)),
        )
        with pytest.raises(ValueError, match="snapshot"):
            load_rtt_series(tmp_path / "x.npz")


class TestPresetValidation:
    def test_all_presets_pass(self):
        from repro.orbits.presets import PRESET_NAMES, preset

        for name in PRESET_NAMES:
            preset(name)

    def test_bogus_shell_rejected(self):
        from repro.orbits.constellation import Constellation, Shell
        from repro.orbits.presets import validate_constellation

        bogus = Constellation(
            name="bogus",
            shells=(
                Shell(
                    name="km-not-m",
                    num_planes=10,
                    sats_per_plane=10,
                    altitude_m=550.0,  # kilometres where metres belong
                    inclination_deg=53.0,
                    min_elevation_deg=25.0,
                ),
            ),
        )
        with pytest.raises(InputValidationError, match="altitude_m"):
            validate_constellation(bogus)


class TestFiberValidation:
    def test_transposed_latlon_rejected(self):
        from repro.network.fiber import city_fiber_edges

        with pytest.raises(InputValidationError, match="lat_deg"):
            city_fiber_edges(
                np.array([100.0, 0.0]), np.array([0.0, 0.0]), 1000.0
            )
