"""Unit tests for the +Grid ISL topology."""

import numpy as np
import pytest

from repro.constants import EARTH_RADIUS
from repro.network.graph import isl_grazing_altitude_m
from repro.network.topology import (
    constellation_isl_edges,
    isl_lengths_m,
    plus_grid_edges,
)
from repro.orbits.constellation import Constellation, Shell
from repro.orbits.presets import starlink_shell


def degree_counts(edges, num_sats):
    degrees = np.zeros(num_sats, dtype=int)
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


class TestPlusGrid:
    def test_every_satellite_has_degree_4(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        degrees = degree_counts(edges, tiny_shell.num_satellites)
        assert np.all(degrees == 4)

    def test_edge_count(self, tiny_shell):
        # P*S intra-plane + P*S cross-plane for non-degenerate rings.
        edges = plus_grid_edges(tiny_shell)
        assert len(edges) == 2 * tiny_shell.num_satellites

    def test_no_duplicate_edges(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        canonical = {(min(u, v), max(u, v)) for u, v in edges}
        assert len(canonical) == len(edges)

    def test_no_self_loops(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_starlink_shell_edge_count(self):
        shell = starlink_shell()
        edges = plus_grid_edges(shell)
        assert len(edges) == 2 * 1584
        assert np.all(degree_counts(edges, 1584) == 4)

    def test_intra_plane_neighbours_adjacent_slots(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        per_plane = tiny_shell.sats_per_plane
        for u, v in edges:
            plane_u, slot_u = divmod(u, per_plane)
            plane_v, slot_v = divmod(v, per_plane)
            if plane_u == plane_v:
                assert (slot_u - slot_v) % per_plane in (1, per_plane - 1)
            else:
                # Cross-plane: adjacent planes (with wrap), phase-nearest
                # slot (the Walker stagger allows a slot shift, which at
                # the seam plane compensates the accumulated offset).
                assert (plane_u - plane_v) % tiny_shell.num_planes in (
                    1,
                    tiny_shell.num_planes - 1,
                )

    def test_degenerate_two_sat_ring(self):
        shell = Shell("d", 1, 2, 550e3, 53.0, 25.0)
        edges = plus_grid_edges(shell)
        assert len(edges) == 1  # No duplicate wraparound edge.

    def test_single_satellite_shell(self):
        shell = Shell("s", 1, 1, 550e3, 53.0, 25.0)
        assert len(plus_grid_edges(shell)) == 0


class TestConstellationEdges:
    def test_no_cross_shell_isls(self, tiny_shell):
        polar = Shell("p", 4, 6, 560e3, 90.0, 25.0)
        constellation = Constellation(name="two", shells=(tiny_shell, polar))
        edges = constellation_isl_edges(constellation)
        boundary = tiny_shell.num_satellites
        same_side = ((edges[:, 0] < boundary) & (edges[:, 1] < boundary)) | (
            (edges[:, 0] >= boundary) & (edges[:, 1] >= boundary)
        )
        assert np.all(same_side)

    def test_edge_count_sums_shells(self, tiny_shell):
        polar = Shell("p", 4, 6, 560e3, 90.0, 25.0)
        constellation = Constellation(name="two", shells=(tiny_shell, polar))
        edges = constellation_isl_edges(constellation)
        assert len(edges) == 2 * 48 + 2 * 24


class TestIslLengths:
    def test_lengths_positive_and_below_diameter(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        positions = tiny_shell.positions_eci(0.0)
        lengths = isl_lengths_m(edges, positions)
        assert np.all(lengths > 0)
        assert np.all(lengths < 2 * (EARTH_RADIUS + tiny_shell.altitude_m))

    def test_starlink_isl_lengths_stay_clear_of_atmosphere(self):
        """Paper Section 2: ISLs must not dip below ~80 km altitude."""
        shell = starlink_shell()
        edges = plus_grid_edges(shell)
        for t in (0.0, 1800.0):
            lengths = isl_lengths_m(edges, shell.positions_eci(t))
            worst = isl_grazing_altitude_m(
                EARTH_RADIUS + shell.altitude_m, float(lengths.max())
            )
            assert worst > 80_000.0

    def test_intra_plane_lengths_constant_over_time(self, tiny_shell):
        edges = plus_grid_edges(tiny_shell)
        per_plane = tiny_shell.sats_per_plane
        intra = edges[edges[:, 0] // per_plane == edges[:, 1] // per_plane]
        l0 = isl_lengths_m(intra, tiny_shell.positions_eci(0.0))
        l1 = isl_lengths_m(intra, tiny_shell.positions_eci(1234.0))
        np.testing.assert_allclose(l0, l1, rtol=1e-9)

    def test_grazing_altitude_of_zero_length_isl(self):
        orbit_radius = EARTH_RADIUS + 550e3
        assert isl_grazing_altitude_m(orbit_radius, 0.0) == pytest.approx(550e3)

    def test_grazing_altitude_decreases_with_length(self):
        orbit_radius = EARTH_RADIUS + 550e3
        short = isl_grazing_altitude_m(orbit_radius, 1000e3)
        long = isl_grazing_altitude_m(orbit_radius, 5000e3)
        assert long < short
