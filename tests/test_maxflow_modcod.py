"""Unit tests for the lax max-flow baseline and MODCOD weather coupling."""

import numpy as np
import pytest

from repro.atmosphere.weather_capacity import edge_weather_capacity_factors
from repro.flows.maxflow import lax_max_flow_bps
from repro.flows.throughput import evaluate_throughput
from repro.network.links import LinkCapacities
from repro.network.modcod import (
    CLEAR_SKY_ESN0_DB,
    MODCOD_TABLE,
    spectral_efficiency,
    weather_capacity_factor,
)


class TestModcodTable:
    def test_thresholds_and_efficiencies_positive(self):
        for threshold, efficiency in MODCOD_TABLE:
            assert efficiency > 0
            assert -5.0 < threshold < 25.0

    def test_spectral_efficiency_monotone(self):
        esn0 = np.linspace(-5.0, 25.0, 200)
        eff = spectral_efficiency(esn0)
        assert np.all(np.diff(eff) >= 0)

    def test_below_lowest_threshold_is_zero(self):
        assert float(spectral_efficiency(-10.0)) == 0.0

    def test_top_of_table(self):
        assert float(spectral_efficiency(25.0)) == pytest.approx(5.901)

    def test_clear_sky_factor_is_one(self):
        assert float(weather_capacity_factor(0.0)) == pytest.approx(1.0)

    def test_factor_survives_small_margin(self):
        # Within the clear-sky margin no MODCOD change is needed.
        assert float(weather_capacity_factor(1.0)) == pytest.approx(1.0)

    def test_factor_decreases_with_attenuation(self):
        factors = weather_capacity_factor(np.array([0.0, 6.0, 12.0, 18.0, 30.0]))
        assert np.all(np.diff(factors) <= 1e-12)
        assert factors[-1] == 0.0  # Link down in an extreme fade.

    def test_factor_bounds(self):
        factors = weather_capacity_factor(np.linspace(0, 40, 100))
        assert np.all(factors >= 0.0)
        assert np.all(factors <= 1.0)

    def test_reference_point_consistent(self):
        # The clear-sky Es/N0 includes the margin above a real threshold.
        assert CLEAR_SKY_ESN0_DB > max(t for t, _ in MODCOD_TABLE) - 10


class TestWeatherFactors:
    def test_shape_and_defaults(self, tiny_hybrid_graph):
        factors = edge_weather_capacity_factors(tiny_hybrid_graph)
        assert factors.shape == (tiny_hybrid_graph.num_edges,)
        # ISLs untouched.
        isl = tiny_hybrid_graph.edge_kind == 1
        assert np.all(factors[isl] == 1.0)
        # Radio links in [0, 1].
        radio = tiny_hybrid_graph.edge_kind == 0
        assert np.all(factors[radio] <= 1.0)
        assert np.all(factors[radio] >= 0.0)

    def test_deeper_exceedance_derates_more(self, tiny_hybrid_graph):
        mild = edge_weather_capacity_factors(tiny_hybrid_graph, 1.0)
        severe = edge_weather_capacity_factors(tiny_hybrid_graph, 0.1)
        assert np.all(severe <= mild + 1e-12)

    def test_throughput_with_factors_not_above_clear(
        self, tiny_hybrid_graph, tiny_scenario
    ):
        pairs = tiny_scenario.pairs
        clear = evaluate_throughput(tiny_hybrid_graph, pairs, k=1)
        factors = edge_weather_capacity_factors(tiny_hybrid_graph)
        weather = evaluate_throughput(
            tiny_hybrid_graph, pairs, k=1, edge_capacity_factors=factors
        )
        assert weather.aggregate_bps <= clear.aggregate_bps * (1 + 1e-9)

    def test_factor_validation(self, tiny_hybrid_graph, tiny_scenario):
        with pytest.raises(ValueError):
            evaluate_throughput(
                tiny_hybrid_graph,
                tiny_scenario.pairs[:2],
                k=1,
                edge_capacity_factors=np.ones(3),
            )
        with pytest.raises(ValueError):
            evaluate_throughput(
                tiny_hybrid_graph,
                tiny_scenario.pairs[:2],
                k=1,
                edge_capacity_factors=-np.ones(tiny_hybrid_graph.num_edges),
            )


class TestLaxMaxFlow:
    def test_upper_bounds_routed_throughput(self, tiny_hybrid_graph, tiny_scenario):
        pairs = tiny_scenario.pairs
        routed = evaluate_throughput(tiny_hybrid_graph, pairs, k=4).aggregate_bps
        lax = lax_max_flow_bps(tiny_hybrid_graph, pairs)
        assert lax >= routed * (1 - 1e-6)

    def test_no_pairs(self, tiny_hybrid_graph):
        assert lax_max_flow_bps(tiny_hybrid_graph, []) == 0.0

    def test_capacity_scaling(self, tiny_hybrid_graph, tiny_scenario):
        pairs = tiny_scenario.pairs[:30]
        base = lax_max_flow_bps(tiny_hybrid_graph, pairs)
        doubled = lax_max_flow_bps(
            tiny_hybrid_graph,
            pairs,
            LinkCapacities(gt_sat_bps=40e9, isl_bps=200e9),
        )
        assert doubled == pytest.approx(2 * base, rel=0.01)

    def test_single_pair_bounded_by_access_capacity(
        self, tiny_hybrid_graph, tiny_scenario
    ):
        # One source, one sink: the lax flow equals the true max flow,
        # bounded by the source's total radio capacity.
        pair = tiny_scenario.pairs[0]
        lax = lax_max_flow_bps(tiny_hybrid_graph, [pair])
        graph = tiny_hybrid_graph
        source_node = graph.gt_node(pair.a)
        degree = int(np.sum(graph.edges[:, 1] == source_node))
        assert lax <= degree * 20e9 * (1 + 1e-6)
        assert lax > 0
