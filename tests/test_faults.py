"""Tests for deterministic fault injection."""

import numpy as np
import pytest

from repro.experiments.ext_fault_tolerance import outage_reachability
from repro.faults import (
    FaultSpec,
    active_fault_spec,
    apply_faults,
    failed_node_mask,
    fault_injection,
    parse_fault_spec,
)
from repro.network.graph import ConnectivityMode


class TestFaultSpec:
    def test_noop_by_default(self):
        assert FaultSpec().is_noop

    def test_fraction_bounds_validated(self):
        with pytest.raises(ValueError, match="sat"):
            FaultSpec(sat=1.5)
        with pytest.raises(ValueError, match="relay"):
            FaultSpec(relay=-0.1)

    def test_describe_roundtrips_through_parse(self):
        spec = FaultSpec(sat=0.05, relay=0.1, seed=7)
        assert parse_fault_spec(spec.describe()) == spec

    def test_merged_with_takes_max_fractions(self):
        merged = FaultSpec(sat=0.2, relay=0.1).merged_with(
            FaultSpec(sat=0.05, aircraft=0.3, seed=9)
        )
        assert merged == FaultSpec(sat=0.2, relay=0.1, aircraft=0.3, seed=9)


class TestParseFaultSpec:
    def test_single_component(self):
        assert parse_fault_spec("sat:0.05") == FaultSpec(sat=0.05)

    def test_multiple_components_and_seed(self):
        spec = parse_fault_spec("sat:0.05, relay:0.1, seed:7")
        assert spec == FaultSpec(sat=0.05, relay=0.1, seed=7)

    def test_unknown_component_named_in_error(self):
        with pytest.raises(ValueError, match="ground_station"):
            parse_fault_spec("ground_station:0.1")

    def test_malformed_entry(self):
        with pytest.raises(ValueError, match="component:fraction"):
            parse_fault_spec("sat")

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError, match="not in"):
            parse_fault_spec("sat:2.0")


class TestFailedNodeMask:
    def test_deterministic_under_fixed_seed(self, tiny_bp_graph):
        spec = FaultSpec(sat=0.25, relay=0.5, seed=11)
        first = failed_node_mask(tiny_bp_graph, spec)
        second = failed_node_mask(tiny_bp_graph, spec)
        np.testing.assert_array_equal(first, second)

    def test_different_seed_different_draw(self, tiny_bp_graph):
        base = failed_node_mask(tiny_bp_graph, FaultSpec(sat=0.25, seed=1))
        other = failed_node_mask(tiny_bp_graph, FaultSpec(sat=0.25, seed=2))
        assert not np.array_equal(base, other)

    def test_fails_requested_fraction_of_satellites(self, tiny_bp_graph):
        spec = FaultSpec(sat=0.25, seed=3)
        mask = failed_node_mask(tiny_bp_graph, spec)
        sats_failed = int(mask[: tiny_bp_graph.num_sats].sum())
        assert sats_failed == round(0.25 * tiny_bp_graph.num_sats)
        assert not mask[tiny_bp_graph.num_sats :].any()

    def test_component_families_respected(self, tiny_bp_graph):
        stations = tiny_bp_graph.stations
        mask = failed_node_mask(tiny_bp_graph, FaultSpec(relay=1.0, seed=3))
        gt_mask = mask[tiny_bp_graph.num_sats :]
        relay_slice = gt_mask[
            stations.city_count : stations.city_count + stations.relay_count
        ]
        assert relay_slice.all()
        assert not gt_mask[: stations.city_count].any()
        assert gt_mask.sum() == stations.relay_count


class TestApplyFaults:
    def test_noop_returns_same_graph(self, tiny_bp_graph):
        assert apply_faults(tiny_bp_graph, None) is tiny_bp_graph
        assert apply_faults(tiny_bp_graph, FaultSpec()) is tiny_bp_graph

    def test_removes_edges_of_failed_nodes(self, tiny_bp_graph):
        spec = FaultSpec(sat=0.5, seed=5)
        degraded = apply_faults(tiny_bp_graph, spec)
        mask = failed_node_mask(tiny_bp_graph, spec)
        assert degraded.num_edges < tiny_bp_graph.num_edges
        assert not mask[degraded.edges[:, 0]].any()
        assert not mask[degraded.edges[:, 1]].any()

    def test_node_ids_stay_stable(self, tiny_bp_graph):
        degraded = apply_faults(tiny_bp_graph, FaultSpec(sat=0.5, seed=5))
        assert degraded.num_nodes == tiny_bp_graph.num_nodes
        assert degraded.num_sats == tiny_bp_graph.num_sats
        assert degraded.gt_node(0) == tiny_bp_graph.gt_node(0)

    def test_matrix_cache_not_inherited(self, tiny_bp_graph):
        tiny_bp_graph.matrix()  # populate the source graph's cache
        degraded = apply_faults(tiny_bp_graph, FaultSpec(sat=0.5, seed=5))
        assert degraded.matrix().nnz < tiny_bp_graph.matrix().nnz


class TestScenarioIntegration:
    def test_with_faults_degrades_graph(self, tiny_scenario):
        degraded = tiny_scenario.with_faults(FaultSpec(sat=0.5, seed=5))
        plain = tiny_scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
        faulty = degraded.graph_at(0.0, ConnectivityMode.BP_ONLY)
        assert faulty.num_edges < plain.num_edges

    def test_ambient_spec_applies_and_clears(self, tiny_scenario):
        plain = tiny_scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
        with fault_injection(FaultSpec(sat=0.5, seed=5)):
            assert active_fault_spec() == FaultSpec(sat=0.5, seed=5)
            inside = tiny_scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
        after = tiny_scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
        assert active_fault_spec() is None
        assert inside.num_edges < plain.num_edges
        assert after.num_edges == plain.num_edges

    def test_explicit_faults_win_over_ambient(self, tiny_scenario):
        degraded = tiny_scenario.with_faults(FaultSpec(sat=0.5, seed=5))
        expected = degraded.graph_at(0.0, ConnectivityMode.BP_ONLY)
        with fault_injection(FaultSpec(sat=0.9, seed=99)):
            inside = degraded.graph_at(0.0, ConnectivityMode.BP_ONLY)
        assert inside.num_edges == expected.num_edges


class TestDegradation:
    """BP-only connectivity collapses faster than hybrid under outages."""

    def test_deterministic_under_fixed_seed(self, tiny_scenario):
        first = outage_reachability(
            tiny_scenario, 0.9, ConnectivityMode.BP_ONLY, seed=7, times_s=[0.0]
        )
        second = outage_reachability(
            tiny_scenario, 0.9, ConnectivityMode.BP_ONLY, seed=7, times_s=[0.0]
        )
        assert first == second

    def test_bp_degrades_faster_than_hybrid(self, tiny_scenario):
        bp_healthy = outage_reachability(
            tiny_scenario, 0.0, ConnectivityMode.BP_ONLY, seed=7, times_s=[0.0]
        )
        hybrid_healthy = outage_reachability(
            tiny_scenario, 0.0, ConnectivityMode.HYBRID, seed=7, times_s=[0.0]
        )
        bp_degraded = outage_reachability(
            tiny_scenario, 0.9, ConnectivityMode.BP_ONLY, seed=7, times_s=[0.0]
        )
        hybrid_degraded = outage_reachability(
            tiny_scenario, 0.9, ConnectivityMode.HYBRID, seed=7, times_s=[0.0]
        )
        bp_drop = bp_healthy["reachable"] - bp_degraded["reachable"]
        hybrid_drop = hybrid_healthy["reachable"] - hybrid_degraded["reachable"]
        assert bp_degraded["reachable"] < hybrid_degraded["reachable"]
        assert bp_drop > hybrid_drop

    def test_experiment_runs_and_reports(self, tiny_scenario):
        from repro.experiments import get_experiment
        from tests.conftest import TINY_SCALE

        result = get_experiment("faults")(scale=TINY_SCALE, fractions=(0.0, 0.9))
        assert result.experiment_id == "faults"
        assert result.headline["BP degrades faster than hybrid"] is True
        np.testing.assert_array_equal(result.data["fractions"], [0.0, 0.9])
