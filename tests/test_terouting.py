"""Unit tests for load-aware (traffic-engineering) routing."""

import numpy as np
import pytest

from repro.flows.routing import route_traffic
from repro.flows.terouting import route_load_aware
from repro.flows.throughput import evaluate_throughput


class TestRouteLoadAware:
    def test_validation(self, tiny_hybrid_graph, tiny_scenario):
        with pytest.raises(ValueError):
            route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs, gamma=-1.0)
        with pytest.raises(ValueError):
            route_load_aware(
                tiny_hybrid_graph, tiny_scenario.pairs, paths_per_pair=0
            )

    def test_gamma_zero_matches_shortest_path_lengths(
        self, tiny_hybrid_graph, tiny_scenario
    ):
        """With no congestion penalty every pair gets its shortest path."""
        te = route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs, gamma=0.0)
        sp = route_traffic(tiny_hybrid_graph, tiny_scenario.pairs, k=1)
        te_by_pair = {s.pair_index: s.path.length_m for s in te.subflows}
        sp_by_pair = {s.pair_index: s.path.length_m for s in sp.subflows}
        assert set(te_by_pair) == set(sp_by_pair)
        for pair_index, length in sp_by_pair.items():
            assert te_by_pair[pair_index] == pytest.approx(length, rel=1e-9)

    def test_paths_are_valid(self, tiny_hybrid_graph, tiny_scenario):
        te = route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs, gamma=3.0)
        for subflow in te.subflows:
            pair = tiny_scenario.pairs[subflow.pair_index]
            assert subflow.path.nodes[0] == tiny_hybrid_graph.gt_node(pair.a)
            assert subflow.path.nodes[-1] == tiny_hybrid_graph.gt_node(pair.b)
            # Edge ids consistent with the node path.
            assert len(subflow.edge_ids) == subflow.path.hops

    def test_true_lengths_reported(self, tiny_hybrid_graph, tiny_scenario):
        """Path lengths must be propagation distances, not inflated weights."""
        te = route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs, gamma=5.0)
        for subflow in te.subflows[:10]:
            recomputed = float(
                np.sum(tiny_hybrid_graph.edge_dist_m[subflow.edge_ids])
            )
            assert subflow.path.length_m == pytest.approx(recomputed, rel=1e-9)

    def test_lengths_at_least_shortest(self, tiny_hybrid_graph, tiny_scenario):
        te = route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs, gamma=3.0)
        sp = route_traffic(tiny_hybrid_graph, tiny_scenario.pairs, k=1)
        sp_by_pair = {s.pair_index: s.path.length_m for s in sp.subflows}
        for subflow in te.subflows:
            assert subflow.path.length_m >= sp_by_pair[subflow.pair_index] * (1 - 1e-9)

    def test_multipath_count(self, tiny_hybrid_graph, tiny_scenario):
        te = route_load_aware(
            tiny_hybrid_graph, tiny_scenario.pairs, gamma=3.0, paths_per_pair=3
        )
        counts = {}
        for subflow in te.subflows:
            counts[subflow.pair_index] = counts.get(subflow.pair_index, 0) + 1
        assert all(c == 3 for c in counts.values())

    def test_throughput_not_worse_than_single_shortest(
        self, tiny_hybrid_graph, tiny_scenario
    ):
        """The conjecture's direction at tiny scale (weak form)."""
        pairs = tiny_scenario.pairs
        sp = evaluate_throughput(tiny_hybrid_graph, pairs, k=1)
        te_routing = route_load_aware(tiny_hybrid_graph, pairs, gamma=3.0)
        te = evaluate_throughput(tiny_hybrid_graph, pairs, routing=te_routing)
        assert te.aggregate_bps >= 0.9 * sp.aggregate_bps

    def test_feasible_with_allocator(self, tiny_hybrid_graph, tiny_scenario):
        from repro.network.links import LinkCapacities

        te_routing = route_load_aware(tiny_hybrid_graph, tiny_scenario.pairs)
        result = evaluate_throughput(
            tiny_hybrid_graph, tiny_scenario.pairs, routing=te_routing
        )
        caps = tiny_hybrid_graph.edge_capacities(LinkCapacities())
        assert np.all(result.allocation.link_loads <= caps * (1 + 1e-9))
