"""Smoke tests: the example scripts must run end-to-end.

Only the two cheapest examples run in the default suite (the others
exercise the same APIs at larger sizes); each runs in a subprocess so an
example crash cannot corrupt test state.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _run_example(name: str, args: list[str] | None = None, timeout: float = 240.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *(args or [])],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleScripts:
    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3  # Deliverable (b): at least three.
        for script in scripts:
            source = script.read_text()
            assert source.lstrip().startswith(('"""', "#!")), script.name
            assert '"""' in source, f"{script.name} lacks a docstring"

    def test_quickstart_runs(self):
        result = _run_example("quickstart.py")
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Minimum RTT" in result.stdout
        assert "median variation increase" in result.stdout

    def test_terminal_experience_runs_with_argument(self):
        result = _run_example("terminal_experience.py", ["Tokyo"])
        assert result.returncode == 0, result.stderr[-2000:]
        assert "Terminal at Tokyo" in result.stdout
        assert "Handover behaviour" in result.stdout
