"""Tests for the generic snapshot-map engine.

:func:`repro.core.parallel.map_snapshot_rows_serial` /
:func:`map_snapshot_rows_parallel` are the single sweep engine behind
the RTT series, the throughput series, and the fig4/fig5/disconnected
experiments. This module locks the engine's own contract — serial and
parallel execution produce bit-identical rows, labelled checkpoints
isolate and resume sweeps, faults are survived — plus the straggler
property the ``concurrent.futures.wait`` rewrite bought: one timeout
window covers *all* in-flight hung workers instead of stacking a window
per future.

The experiment-facing evaluators (throughput, component stats, the
fig4/fig5 rows) are exercised through the same engine here, so a change
to the engine that skews any experiment's numbers fails in this file
before it reaches the golden tests.
"""

from __future__ import annotations

import functools
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.checkpoint import checkpoint_root
from repro.core.parallel import (
    FaultPolicy,
    map_snapshot_rows_parallel,
    map_snapshot_rows_serial,
)
from repro.experiments.disconnected import _component_row
from repro.experiments.fig4_throughput import _matrix_snapshot_row
from repro.experiments.fig5_isl_capacity import RATIOS, _capacity_sweep_row
from repro.flows.throughput import throughput_series_gbps
from repro.network.graph import ConnectivityMode
from repro.obs import observe

BP = ConnectivityMode.BP_ONLY
HYBRID = ConnectivityMode.HYBRID
MODES = (BP, HYBRID)

TIMES = np.asarray([0.0, 60.0, 120.0, 180.0, 240.0])

# Evaluators and fault hooks live at module level so fork-started
# workers can unpickle them.


def _poly_row(scenario, time_s, mode) -> np.ndarray:
    """Cheap deterministic evaluator: a polynomial in (time, mode)."""
    base = 1.0 if mode is BP else 2.0
    return np.asarray([base * time_s, base + time_s, base])


def _other_row(scenario, time_s, mode) -> np.ndarray:
    return -_poly_row(scenario, time_s, mode)


def _ragged_row(scenario, time_s, mode) -> np.ndarray:
    """Different row widths per mode (the fig5 shape)."""
    if mode is BP:
        return np.asarray([time_s])
    return np.asarray([time_s, 2.0 * time_s])


def _wrong_width_row(scenario, time_s, mode) -> np.ndarray:
    return np.asarray([1.0, 2.0])


def _explode(scenario, time_s, mode) -> np.ndarray:
    raise AssertionError("evaluator must not run on a fully resumed sweep")


_FLAG_DIR_ENV = "REPRO_TEST_SNAPMAP_FLAG_DIR"


def _crash_once_per_snapshot(index: int, time_s: float) -> None:
    flag = Path(os.environ[_FLAG_DIR_ENV]) / f"snapshot_{index}"
    if not flag.exists():
        flag.touch()
        raise RuntimeError("transient worker crash")


def _hang_first_snapshot_once(index: int, time_s: float) -> None:
    if index != 0:
        return
    flag = Path(os.environ[_FLAG_DIR_ENV]) / f"snapshot_{index}"
    if not flag.exists():
        flag.touch()
        time.sleep(4.0)


@pytest.fixture()
def flag_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(_FLAG_DIR_ENV, str(tmp_path))
    return tmp_path


def _expected_poly(times):
    return {
        mode: np.stack(
            [_poly_row(None, float(t), mode) for t in times], axis=1
        )
        for mode in MODES
    }


class TestSerialMap:
    def test_rows_are_columns_per_mode(self, tiny_scenario):
        rows = map_snapshot_rows_serial(
            tiny_scenario, MODES, _poly_row, row_len=3, times_s=TIMES
        )
        expected = _expected_poly(TIMES)
        for mode in MODES:
            assert rows[mode].shape == (3, len(TIMES))
            np.testing.assert_array_equal(rows[mode], expected[mode])

    def test_per_mode_row_widths(self, tiny_scenario):
        rows = map_snapshot_rows_serial(
            tiny_scenario,
            MODES,
            _ragged_row,
            row_len={BP: 1, HYBRID: 2},
            times_s=TIMES,
        )
        assert rows[BP].shape == (1, len(TIMES))
        assert rows[HYBRID].shape == (2, len(TIMES))
        np.testing.assert_array_equal(rows[BP][0], TIMES)
        np.testing.assert_array_equal(rows[HYBRID][1], 2.0 * TIMES)

    def test_wrong_row_shape_rejected(self, tiny_scenario):
        with pytest.raises(ValueError, match="expected"):
            map_snapshot_rows_serial(
                tiny_scenario, [BP], _wrong_width_row, row_len=3, times_s=TIMES
            )

    def test_progress_reports_each_snapshot(self, tiny_scenario):
        calls = []
        map_snapshot_rows_serial(
            tiny_scenario,
            [BP],
            _poly_row,
            row_len=3,
            times_s=TIMES,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(i + 1, len(TIMES)) for i in range(len(TIMES))]


class TestParallelMatchesSerial:
    def test_bit_identical_rows(self, tiny_scenario):
        serial = map_snapshot_rows_serial(
            tiny_scenario, MODES, _poly_row, row_len=3, times_s=TIMES
        )
        parallel = map_snapshot_rows_parallel(
            tiny_scenario,
            MODES,
            _poly_row,
            row_len=3,
            times_s=TIMES,
            processes=2,
        )
        for mode in MODES:
            np.testing.assert_array_equal(parallel[mode], serial[mode])

    def test_fault_hook_crashes_recovered(self, tiny_scenario, flag_dir):
        rows = map_snapshot_rows_parallel(
            tiny_scenario,
            MODES,
            _poly_row,
            row_len=3,
            times_s=TIMES,
            processes=2,
            fault_hook=_crash_once_per_snapshot,
            policy=FaultPolicy(
                max_attempts=3, backoff_base_s=0.01, serial_fallback=False
            ),
        )
        expected = _expected_poly(TIMES)
        for mode in MODES:
            np.testing.assert_array_equal(rows[mode], expected[mode])
        # Every snapshot crashed exactly once before its retry.
        assert len(list(flag_dir.iterdir())) == len(TIMES)

    def test_straggler_costs_one_window_not_one_per_future(
        self, tiny_scenario, flag_dir
    ):
        """The stall-based timeout: hung workers share a single window.

        One snapshot hangs for 4 s on its first attempt while the other
        five finish in milliseconds. With the single ``wait`` window the
        sweep notices the stall after ~1 s, fails the straggler, and the
        retry (flag set, no hang) completes immediately — well under the
        4 s the hook sleeps. An implementation that waited on the hung
        future directly (or stacked one window per outstanding future)
        cannot finish before the sleep does.
        """
        start = time.monotonic()
        with observe() as registry:
            rows = map_snapshot_rows_parallel(
                tiny_scenario,
                MODES,
                _poly_row,
                row_len=3,
                times_s=np.asarray([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
                processes=2,
                fault_hook=_hang_first_snapshot_once,
                policy=FaultPolicy(
                    max_attempts=2,
                    snapshot_timeout_s=1.0,
                    backoff_base_s=0.01,
                ),
            )
        elapsed = time.monotonic() - start
        counters = registry.snapshot()["counters"]
        assert counters["parallel.timeouts"] >= 1
        assert elapsed < 3.5, f"straggler stalled the sweep for {elapsed:.1f}s"
        expected = _expected_poly(np.asarray([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]))
        for mode in MODES:
            np.testing.assert_array_equal(rows[mode], expected[mode])


class TestCheckpointResume:
    def test_resume_serves_rows_without_reevaluating(
        self, tiny_scenario, tmp_path
    ):
        with checkpoint_root(tmp_path):
            first = map_snapshot_rows_serial(
                tiny_scenario, MODES, _poly_row, row_len=3, times_s=TIMES
            )
            # Resume with an evaluator that *cannot* run: every row must
            # come back verified from disk.
            with observe() as registry:
                resumed = map_snapshot_rows_serial(
                    tiny_scenario, MODES, _explode, row_len=3, times_s=TIMES
                )
        counters = registry.snapshot()["counters"]
        assert counters["checkpoint.hits"] == len(TIMES) * len(MODES)
        assert "checkpoint.misses" not in counters
        for mode in MODES:
            np.testing.assert_array_equal(resumed[mode], first[mode])

    def test_parallel_resume_from_serial_shards(self, tiny_scenario, tmp_path):
        with checkpoint_root(tmp_path):
            first = map_snapshot_rows_serial(
                tiny_scenario, MODES, _poly_row, row_len=3, times_s=TIMES
            )
            resumed = map_snapshot_rows_parallel(
                tiny_scenario,
                MODES,
                _explode,
                row_len=3,
                times_s=TIMES,
                processes=2,
            )
        for mode in MODES:
            np.testing.assert_array_equal(resumed[mode], first[mode])

    def test_labels_isolate_sweeps(self, tiny_scenario, tmp_path):
        with checkpoint_root(tmp_path):
            rows_a = map_snapshot_rows_serial(
                tiny_scenario,
                [BP],
                _poly_row,
                row_len=3,
                times_s=TIMES,
                label="sweep a!",
            )
            rows_b = map_snapshot_rows_serial(
                tiny_scenario,
                [BP],
                _other_row,
                row_len=3,
                times_s=TIMES,
                label="sweep-b",
            )
            # Each label resumes its own shards — never the other's.
            resumed_a = map_snapshot_rows_serial(
                tiny_scenario,
                [BP],
                _explode,
                row_len=3,
                times_s=TIMES,
                label="sweep a!",
            )
            resumed_b = map_snapshot_rows_serial(
                tiny_scenario,
                [BP],
                _explode,
                row_len=3,
                times_s=TIMES,
                label="sweep-b",
            )
        np.testing.assert_array_equal(resumed_a[BP], rows_a[BP])
        np.testing.assert_array_equal(resumed_b[BP], rows_b[BP])
        assert not np.array_equal(rows_a[BP], rows_b[BP])
        names = sorted(p.name for p in tmp_path.iterdir())
        # Labels land in the directory names, sanitized for the fs.
        assert any(name.startswith("sweep_a_-") for name in names)
        assert any(name.startswith("sweep-b-") for name in names)


class TestExperimentEvaluators:
    """The experiment rows, serial vs parallel through the same engine."""

    def test_disconnected_rows_identical(self, tiny_scenario):
        serial = map_snapshot_rows_serial(
            tiny_scenario, MODES, _component_row, row_len=2
        )
        parallel = map_snapshot_rows_parallel(
            tiny_scenario, MODES, _component_row, row_len=2, processes=2
        )
        for mode in MODES:
            np.testing.assert_array_equal(parallel[mode], serial[mode])
        # BP strands satellites; hybrid (with ISLs) essentially none.
        assert serial[BP][0].max() >= serial[HYBRID][0].max()

    def test_fig4_matrix_rows_identical(self, tiny_scenario):
        evaluator = functools.partial(
            _matrix_snapshot_row, ks=(1, 4), capacities=None
        )
        serial = map_snapshot_rows_serial(
            tiny_scenario, MODES, evaluator, row_len=2
        )
        parallel = map_snapshot_rows_parallel(
            tiny_scenario, MODES, evaluator, row_len=2, processes=2
        )
        for mode in MODES:
            np.testing.assert_array_equal(parallel[mode], serial[mode])

    def test_fig5_ragged_rows_identical(self, tiny_scenario):
        evaluator = functools.partial(_capacity_sweep_row, k=2, ratios=RATIOS)
        widths = {BP: 1, HYBRID: len(RATIOS)}
        times = tiny_scenario.times_s[:2]
        serial = map_snapshot_rows_serial(
            tiny_scenario, MODES, evaluator, row_len=widths, times_s=times
        )
        parallel = map_snapshot_rows_parallel(
            tiny_scenario,
            MODES,
            evaluator,
            row_len=widths,
            times_s=times,
            processes=2,
        )
        for mode in MODES:
            np.testing.assert_array_equal(parallel[mode], serial[mode])


class TestThroughputSeries:
    def test_parallel_matches_serial(self, tiny_scenario):
        serial = throughput_series_gbps(tiny_scenario, HYBRID, k=1, processes=1)
        parallel = throughput_series_gbps(
            tiny_scenario, HYBRID, k=1, processes=2
        )
        np.testing.assert_array_equal(parallel, serial)

    def test_crashing_workers_do_not_skew_numbers(
        self, tiny_scenario, flag_dir
    ):
        baseline = throughput_series_gbps(
            tiny_scenario, HYBRID, k=1, processes=1
        )
        survived = throughput_series_gbps(
            tiny_scenario,
            HYBRID,
            k=1,
            processes=2,
            fault_hook=_crash_once_per_snapshot,
            policy=FaultPolicy(max_attempts=3, backoff_base_s=0.01),
        )
        np.testing.assert_array_equal(survived, baseline)

    def test_resume_is_bit_identical(self, tiny_scenario, tmp_path):
        fresh = throughput_series_gbps(tiny_scenario, HYBRID, k=1, processes=1)
        with checkpoint_root(tmp_path):
            first = throughput_series_gbps(
                tiny_scenario, HYBRID, k=1, processes=1
            )
            with observe() as registry:
                resumed = throughput_series_gbps(
                    tiny_scenario, HYBRID, k=1, processes=1
                )
        counters = registry.snapshot()["counters"]
        assert counters["checkpoint.hits"] == len(tiny_scenario.times_s)
        np.testing.assert_array_equal(first, fresh)
        np.testing.assert_array_equal(resumed, fresh)
        # The sweep landed under its throughput label, not the RTT one.
        assert any(
            p.name.startswith("tput-k1-") for p in tmp_path.iterdir()
        )
