"""Unit tests for the coverage-analysis utilities."""

import numpy as np
import pytest

from repro.orbits.coverage import (
    latitude_coverage_profile,
    max_served_latitude_deg,
    visible_satellite_counts,
)
from repro.orbits.presets import starlink, starlink_with_polar


class TestVisibleCounts:
    def test_matches_graph_builder(self, tiny_scenario, tiny_bp_graph):
        """Coverage counts must agree with the snapshot graph's edges."""
        stations = tiny_bp_graph.stations
        city_lats = stations.lats[: stations.city_count]
        city_lons = stations.lons[: stations.city_count]
        counts = visible_satellite_counts(
            tiny_scenario.constellation, city_lats, city_lons, 0.0
        )
        for city_idx in range(stations.city_count):
            node = tiny_bp_graph.gt_node(city_idx)
            degree = int(np.sum(tiny_bp_graph.edges[:, 1] == node))
            assert counts[city_idx] == degree

    def test_midlatitude_sees_more_than_equator(self, starlink_constellation):
        # Average over longitudes to smooth plane geometry.
        lons = np.linspace(-180, 180, 36, endpoint=False)
        mid = visible_satellite_counts(
            starlink_constellation, np.full(36, 51.0), lons, 0.0
        ).mean()
        equator = visible_satellite_counts(
            starlink_constellation, np.zeros(36), lons, 0.0
        ).mean()
        assert mid > 1.5 * equator

    def test_poles_uncovered_by_inclined_shell(self, starlink_constellation):
        counts = visible_satellite_counts(
            starlink_constellation, np.array([75.0, -75.0, 89.0]), np.zeros(3), 0.0
        )
        assert np.all(counts == 0)

    def test_polar_shell_covers_poles(self):
        constellation = starlink_with_polar()
        counts = visible_satellite_counts(
            constellation, np.array([85.0]), np.array([0.0]), 0.0
        )
        assert counts[0] > 0


class TestLatitudeProfile:
    @pytest.fixture(scope="class")
    def profile(self, starlink_constellation):
        return latitude_coverage_profile(
            starlink_constellation, [0.0, 1800.0], lat_step_deg=10.0,
            num_lon_samples=12,
        )

    def test_shapes(self, profile):
        assert len(profile["lats"]) == len(profile["mean"]) == len(profile["min"])

    def test_symmetric_about_equator(self, profile):
        lats = profile["lats"]
        mean = profile["mean"]
        north = mean[lats > 0]
        south = mean[lats < 0][::-1]
        np.testing.assert_allclose(north, south, rtol=0.5, atol=2.0)

    def test_peak_near_inclination(self, profile):
        lats = profile["lats"]
        peak_lat = abs(lats[int(np.argmax(profile["mean"]))])
        assert 40.0 <= peak_lat <= 60.0

    def test_validation(self, starlink_constellation):
        with pytest.raises(ValueError):
            latitude_coverage_profile(starlink_constellation, [0.0], lat_step_deg=0)


class TestMaxServedLatitude:
    def test_starlink_limit_around_61(self, starlink_constellation):
        limit = max_served_latitude_deg(starlink_constellation)
        assert 59.0 < limit < 64.0

    def test_polar_shell_reaches_pole(self):
        assert max_served_latitude_deg(starlink_with_polar()) == 90.0
