"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.reporting.ascii_plots import ascii_cdf, ascii_histogram, sparkline


class TestAsciiCdf:
    def test_basic_structure(self):
        text = ascii_cdf({"BP": np.arange(100.0)}, width=40, height=8, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 8 + 3  # title + rows + axis + range + legend
        assert "B=BP" in lines[-1]

    def test_two_series_distinct_markers(self):
        text = ascii_cdf({"BP": np.arange(50.0), "Hybrid": np.arange(50.0) * 0.5})
        assert "B" in text and "H" in text

    def test_monotone_curve(self):
        # The marker's row index must not increase left to right.
        text = ascii_cdf({"X": np.random.default_rng(0).uniform(0, 1, 500)},
                         width=30, height=10)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        last_row_of_col = {}
        for r, row in enumerate(rows):
            for c, ch in enumerate(row):
                if ch == "X":
                    last_row_of_col.setdefault(c, r)
        cols = sorted(last_row_of_col)
        values = [last_row_of_col[c] for c in cols]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_empty_data(self):
        assert "(no finite data)" in ascii_cdf({"X": np.array([np.nan])})

    def test_constant_data(self):
        text = ascii_cdf({"X": np.full(10, 5.0)})
        assert "X" in text


class TestAsciiHistogram:
    def test_counts_sum(self):
        values = np.random.default_rng(1).normal(size=200)
        text = ascii_histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 200

    def test_nan_dropped(self):
        text = ascii_histogram(np.array([1.0, np.nan, 2.0]), bins=2)
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == 2

    def test_empty(self):
        assert "(no finite data)" in ascii_histogram(np.array([]))

    def test_title(self):
        assert ascii_histogram(np.arange(5.0), title="H").splitlines()[0] == "H"


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline(np.arange(10.0))) == 10

    def test_monotone_series(self):
        line = sparkline(np.arange(8.0))
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant(self):
        assert sparkline(np.ones(5)) == "▁▁▁▁▁"

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_non_finite_dropped(self):
        assert len(sparkline(np.array([1.0, np.inf, 2.0]))) == 2
