"""Bench E7 — Fig. 6: 99.5th-pct attenuation across city pairs.

Prints the BP-vs-ISL attenuation CDF. Shape assertions: BP's worst-link
attenuation distribution dominates the ISL one; the median gap is
positive (paper: >1 dB at full scale).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig6_attenuation(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("fig6"))
    record_result(result)

    bp = result.data["bp_db"]
    isl = result.data["isl_db"]
    both = np.isfinite(bp) & np.isfinite(isl)
    assert both.sum() > 0.8 * len(bp)
    # Distribution dominance at the quartiles.
    for pct in (25, 50, 75):
        assert np.percentile(bp[both], pct) >= np.percentile(isl[both], pct)
    # Median gap positive; the vast majority of pairs prefer ISL.
    gap = float(np.median(bp[both]) - np.median(isl[both]))
    assert gap > 0.2
    assert np.mean(bp[both] >= isl[both] - 1e-9) > 0.7
    if full_scale:
        assert gap > 0.8  # Paper: >1 dB.
