"""Bench E8 — Fig. 7/8: the Delhi-Sydney attenuation case study.

Prints the per-hop attenuation table for both paths at 1 % exceedance.
Shape assertions: the BP path bounces through intermediate GTs in the
tropics and its worst link attenuates more than the ISL path's worse
endpoint hop (paper: ~5 dB vs ~2.2 dB).
"""

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig8_delhi_sydney(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("fig8"))
    record_result(result)

    bp_worst = result.data["bp_worst_db"]
    isl_worst = result.data["isl_worst_db"]
    assert bp_worst > isl_worst
    # The BP path actually zig-zags (intermediate GT bounces).
    assert result.data["bp_hops"] > result.data["isl_hops"]
    assert result.headline["BP intermediate GT hops [paper: 2 aircraft + 4 GTs]"] >= 2
    # Magnitudes in the paper's ballpark (dB-scale, not fractions).
    assert 0.1 < isl_worst < 10.0
    assert 0.5 < bp_worst < 20.0
