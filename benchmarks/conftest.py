"""Benchmark harness configuration.

Each benchmark regenerates one paper figure/table: it runs the
corresponding experiment (timed by pytest-benchmark), prints the same
rows/series the paper plots, persists the rendered output under
``benchmarks/output/``, and asserts the paper's qualitative shape.

Scale: default is a reduced configuration that finishes in minutes;
``REPRO_FULL_SCALE=1`` switches to the paper's full setup (1,000 cities,
5,000 pairs, 0.5-degree relays, 96 snapshots) — expect hours.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture()
def record_result():
    """Persist an experiment's rendered output and echo it to stdout."""

    def _record(result):
        OUTPUT_DIR.mkdir(exist_ok=True)
        text = result.render()
        path = OUTPUT_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n")
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "no")
