"""Bench E11 — Fig. 11: fiber-augmented distributed GTs around Paris.

Prints the per-snapshot satellite-visibility counts for Paris alone
versus Paris + 5 fiber-connected neighbours. Shape assertions: the
union strictly exceeds the metro alone on average (the distributed-GT
capacity multiplication the paper sketches).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig11_fiber_aug(benchmark, record_result):
    result = run_once(benchmark, get_experiment("fig11"))
    record_result(result)

    metro = result.data["metro_counts"]
    union = result.data["union_counts"]
    assert np.all(union >= metro)
    assert union.mean() > 1.05 * metro.mean()
    # Paris at 48.9 deg N sits near the 53-degree shell's density peak:
    # it must always see multiple satellites.
    assert metro.min() >= 5
