"""Bench E3 — Fig. 3: the Maceio-Durban path changes with aircraft.

Prints the per-snapshot RTT and hop composition table. Shape assertions:
BP's RTT range for the pair exceeds hybrid's, BP routes through aircraft
relays, and (full scale) the inflation reaches tens of ms via
North-Atlantic detours.
"""

from benchmarks.conftest import run_once
from repro.core.scenario import ScenarioScale
from repro.experiments import get_experiment


def _bench_scale(full_scale: bool):
    if full_scale:
        return ScenarioScale.full()
    # Fig. 3 needs a day-scale window to catch aircraft-availability
    # swings; city/pair count does not matter (the pair is pinned).
    return ScenarioScale(
        name="fig3-bench",
        num_cities=50,
        num_pairs=10,
        relay_spacing_deg=2.0,
        num_snapshots=24,
        snapshot_interval_s=3600.0,
    )


def test_bench_fig3_maceio_durban(benchmark, record_result, full_scale):
    result = run_once(
        benchmark, get_experiment("fig3"), scale=_bench_scale(full_scale)
    )
    record_result(result)

    bp = result.data["bp_rtt_ms"]
    hybrid = result.data["hybrid_rtt_ms"]
    assert len(bp) > 0 and len(hybrid) > 0
    bp_range = bp.max() - bp.min()
    hybrid_range = hybrid.max() - hybrid.min()
    # The paper's core claim for this pair: BP is far less stable.
    assert bp_range > hybrid_range
    # The South Atlantic crossing leans on aircraft relays.
    assert result.headline["BP snapshots using aircraft relays"] > 0
    if full_scale:
        assert bp_range > 20.0  # Paper: inflation up to ~100 ms.
