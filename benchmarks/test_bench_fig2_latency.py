"""Bench E1/E2 — Fig. 2(a)/(b): min RTT and RTT variation, BP vs hybrid.

Prints both CDF tables and the Section 4 headline metrics. Shape
assertions: hybrid min RTT never worse per pair; BP's variation
distribution sits above hybrid's at the median; at full scale the paper
additionally reports +80 % (median) and +422 % (p95) variation increases
and a 57 ms max min-RTT gap.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig2_latency(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("fig2"))
    record_result(result)

    bp_min = result.data["bp_min_rtt_ms"]
    hy_min = result.data["hybrid_min_rtt_ms"]
    finite = np.isfinite(bp_min) & np.isfinite(hy_min)
    assert finite.sum() > 0.9 * len(bp_min)
    # Fig 2(a): the hybrid network is a superset, so per-pair min RTT
    # can never be worse.
    assert np.all(bp_min[finite] >= hy_min[finite] - 1e-6)
    # There are pairs where BP pays a visible penalty.
    assert np.max(bp_min[finite] - hy_min[finite]) > 5.0

    # Fig 2(b): BP varies more at the median pair.
    assert result.headline["median variation increase (%) [paper: +80]"] > 0
    if full_scale:
        # Tail behaviour needs the full pair population to be stable.
        assert result.headline["p95 variation increase (%) [paper: +422]"] > 50
