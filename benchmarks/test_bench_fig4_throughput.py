"""Bench E4 — Fig. 4: aggregate throughput, BP vs hybrid, both shells.

Prints the four-row throughput table (Starlink/Kuiper x BP/hybrid at
k = 1 and 4) and the headline ratios. Shape assertions: hybrid wins on
both constellations at both k; at full scale the paper's >=2.5x (k=1)
and >=3.1x (k=4) factors and the multipath-gain ordering are asserted
with slack.
"""

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig4_throughput(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("fig4"))
    record_result(result)

    for constellation in ("starlink", "kuiper"):
        matrix = result.data[constellation]
        for k in (1, 4):
            hybrid = matrix[("hybrid", k)]
            bp = matrix[("bp", k)]
            assert hybrid > bp, f"{constellation} k={k}: hybrid must win"
        # The reduced default scale undershoots the paper's ratios
        # (less contention); the direction and a >= 1.5x margin hold.
        assert matrix[("hybrid", 1)] / matrix[("bp", 1)] > 1.5

    if full_scale:
        for constellation in ("starlink", "kuiper"):
            matrix = result.data[constellation]
            assert matrix[("hybrid", 1)] / matrix[("bp", 1)] > 2.0
            assert matrix[("hybrid", 4)] / matrix[("bp", 4)] > 2.5
