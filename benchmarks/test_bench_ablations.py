"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

Each bench varies exactly one design decision and prints the comparison,
so the cost/benefit of the choice is measured, not asserted by fiat:

* D2 — scipy-csgraph Dijkstra vs a pure-networkx implementation;
* D3 — edge-disjoint vs node-disjoint multipath;
* D4 — relay-grid density (the paper fixes 0.5 degrees);
* D5 — aircraft-corridor density (drives the Fig. 3 effect);
* D6 — max-min fair allocation vs naive equal-split;
* D7 — per-link capacities (paper model) vs a per-satellite radio cap;
* D8 — unbounded GTs per satellite (paper model) vs finite beam counts;
* D9 — uniform pair sampling (paper model) vs gravity-weighted traffic.
"""

from dataclasses import replace

import networkx as nx
import numpy as np
import pytest

from benchmarks.conftest import OUTPUT_DIR
from repro.core.pipeline import compute_rtt_series
from repro.core.scenario import Scenario, ScenarioScale
from repro.flows.equalsplit import equal_split_allocation
from repro.flows.routing import route_traffic
from repro.flows.throughput import evaluate_throughput
from repro.network.graph import ConnectivityMode
from repro.network.paths import k_edge_disjoint_paths, k_node_disjoint_paths
from repro.reporting import format_table


def _write(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


SMALL_TP = ScenarioScale(
    name="ablation-tp",
    num_cities=150,
    num_pairs=400,
    relay_spacing_deg=2.0,
    num_snapshots=1,
)


@pytest.fixture(scope="module")
def tp_scenario():
    return Scenario.paper_default("starlink", SMALL_TP)


@pytest.fixture(scope="module")
def hybrid_graph(tp_scenario):
    return tp_scenario.graph_at(0.0, ConnectivityMode.HYBRID)


class TestD2DijkstraBackend:
    def test_bench_csgraph_vs_networkx(self, benchmark, hybrid_graph, tp_scenario):
        """D2: the csgraph backend must beat pure networkx handily."""
        import time

        pairs = tp_scenario.pairs[:20]
        matrix = hybrid_graph.matrix()

        def run_csgraph():
            from scipy.sparse import csgraph

            for pair in pairs:
                csgraph.dijkstra(
                    matrix, directed=True, indices=hybrid_graph.gt_node(pair.a)
                )

        elapsed = benchmark.pedantic(run_csgraph, rounds=1, iterations=1)

        nx_graph = nx.from_scipy_sparse_array(matrix)
        started = time.time()
        for pair in pairs[:3]:  # networkx is slow; sample it.
            nx.single_source_dijkstra_path_length(
                nx_graph, hybrid_graph.gt_node(pair.a)
            )
        nx_per_source = (time.time() - started) / 3

        started = time.time()
        from scipy.sparse import csgraph

        for pair in pairs[:3]:
            csgraph.dijkstra(
                matrix, directed=True, indices=hybrid_graph.gt_node(pair.a)
            )
        cs_per_source = (time.time() - started) / 3

        _write(
            "ablation_d2_backend",
            format_table(
                ["backend", "seconds per single-source run"],
                [
                    ["scipy.csgraph", f"{cs_per_source:.4f}"],
                    ["networkx", f"{nx_per_source:.4f}"],
                    ["speedup", f"{nx_per_source / max(cs_per_source, 1e-9):.1f}x"],
                ],
                title="D2: Dijkstra backend on the snapshot graph",
            ),
        )
        assert cs_per_source < nx_per_source

    def test_bench_backends_agree(self, benchmark, hybrid_graph, tp_scenario):
        """Same distances from both backends (correctness of D2)."""
        from scipy.sparse import csgraph

        matrix = hybrid_graph.matrix()
        pair = tp_scenario.pairs[0]
        source = hybrid_graph.gt_node(pair.a)
        target = hybrid_graph.gt_node(pair.b)

        def run():
            cs = csgraph.dijkstra(matrix, directed=True, indices=source)[target]
            nx_graph = nx.from_scipy_sparse_array(matrix)
            nx_dist = nx.single_source_dijkstra_path_length(nx_graph, source)[target]
            return cs, nx_dist

        cs_dist, nx_dist = benchmark.pedantic(run, rounds=1, iterations=1)
        assert cs_dist == pytest.approx(nx_dist, rel=1e-9)


class TestD3DisjointnessModel:
    def test_bench_edge_vs_node_disjoint(self, benchmark, hybrid_graph, tp_scenario):
        """D3: node-disjoint paths are fewer/longer than edge-disjoint."""
        matrix = hybrid_graph.matrix()
        pairs = tp_scenario.pairs[:30]

        def run():
            rows = []
            for pair in pairs:
                s, t = hybrid_graph.gt_node(pair.a), hybrid_graph.gt_node(pair.b)
                edge_paths = k_edge_disjoint_paths(matrix, s, t, 4)
                node_paths = k_node_disjoint_paths(matrix, s, t, 4)
                rows.append((len(edge_paths), len(node_paths),
                             sum(p.length_m for p in edge_paths),
                             sum(p.length_m for p in node_paths)))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        edge_counts = np.array([r[0] for r in rows])
        node_counts = np.array([r[1] for r in rows])
        _write(
            "ablation_d3_disjointness",
            format_table(
                ["model", "mean paths found (k=4)", "pairs with 4 paths"],
                [
                    ["edge-disjoint", f"{edge_counts.mean():.2f}",
                     int(np.sum(edge_counts == 4))],
                    ["node-disjoint", f"{node_counts.mean():.2f}",
                     int(np.sum(node_counts == 4))],
                ],
                title="D3: edge- vs node-disjoint multipath",
            ),
        )
        # Node-disjointness is stricter: never more paths.
        assert np.all(node_counts <= edge_counts)
        # Both find multipath in a LEO mesh.
        assert edge_counts.mean() > 2.0


class TestD4RelayDensity:
    def test_bench_relay_density_sweep(self, benchmark):
        """D4: BP latency improves (weakly) with relay density."""
        spacings = (4.0, 2.0, 1.0)

        def run():
            medians = {}
            for spacing in spacings:
                scale = ScenarioScale(
                    name=f"relay-{spacing}",
                    num_cities=100,
                    num_pairs=80,
                    relay_spacing_deg=spacing,
                    num_snapshots=1,
                )
                scenario = Scenario.paper_default("starlink", scale)
                series = compute_rtt_series(scenario, ConnectivityMode.BP_ONLY)
                finite = series.rtt_ms[np.isfinite(series.rtt_ms)]
                medians[spacing] = float(np.median(finite))
            return medians

        medians = benchmark.pedantic(run, rounds=1, iterations=1)
        _write(
            "ablation_d4_relay_density",
            format_table(
                ["relay spacing (deg)", "median BP RTT (ms)"],
                [[f"{s:g}", f"{medians[s]:.2f}"] for s in spacings],
                title="D4: relay-grid density vs BP latency",
            ),
        )
        # Denser grid is a superset: median RTT must not increase.
        assert medians[1.0] <= medians[4.0] + 1e-6

    def test_bench_relay_density_vs_disconnected(self, benchmark):
        """Denser relays keep more satellites attached under BP."""

        def run():
            fractions = {}
            for spacing in (4.0, 1.0):
                scale = ScenarioScale(
                    name=f"relay-{spacing}",
                    num_cities=100,
                    num_pairs=10,
                    relay_spacing_deg=spacing,
                    num_snapshots=1,
                )
                scenario = Scenario.paper_default("starlink", scale)
                graph = scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
                fractions[spacing] = graph.satellite_component_stats()[
                    "disconnected_fraction"
                ]
            return fractions

        fractions = benchmark.pedantic(run, rounds=1, iterations=1)
        _write(
            "ablation_d4_disconnected",
            format_table(
                ["relay spacing (deg)", "BP disconnected satellites"],
                [[f"{s:g}", f"{100 * fractions[s]:.1f}%"] for s in (4.0, 1.0)],
                title="D4: relay density vs stranded satellites",
            ),
        )
        assert fractions[1.0] <= fractions[4.0]


class TestD5AircraftDensity:
    def test_bench_aircraft_density_vs_bp_reachability(self, benchmark):
        """D5: transoceanic BP connectivity needs the aircraft relays."""
        scale = ScenarioScale(
            name="aircraft-ablation",
            num_cities=100,
            num_pairs=120,
            relay_spacing_deg=2.0,
            num_snapshots=2,
            snapshot_interval_s=3600.0,
        )

        def run():
            outcome = {}
            for density in (0.0, 0.25, 1.0):
                scenario = replace(
                    Scenario.paper_default("starlink", scale),
                    aircraft_density_scale=density,
                    use_aircraft=density > 0,
                )
                series = compute_rtt_series(scenario, ConnectivityMode.BP_ONLY)
                outcome[density] = series.reachable_fraction()
            return outcome

        reachability = benchmark.pedantic(run, rounds=1, iterations=1)
        _write(
            "ablation_d5_aircraft",
            format_table(
                ["aircraft density", "BP reachable (pair,snapshot) fraction"],
                [[f"{d:g}x", f"{reachability[d]:.3f}"] for d in (0.0, 0.25, 1.0)],
                title="D5: aircraft-relay density vs BP reachability",
            ),
        )
        assert reachability[0.0] < reachability[1.0]
        assert reachability[0.25] <= reachability[1.0] + 1e-9


class TestD6Allocator:
    def test_bench_maxmin_vs_equal_split(self, benchmark, hybrid_graph, tp_scenario):
        """D6: max-min is work-conserving; equal-split leaves capacity idle."""
        routing = route_traffic(hybrid_graph, tp_scenario.pairs, k=1)

        def run():
            maxmin = evaluate_throughput(
                hybrid_graph, tp_scenario.pairs, k=1, routing=routing
            ).aggregate_gbps
            equal = evaluate_throughput(
                hybrid_graph,
                tp_scenario.pairs,
                k=1,
                routing=routing,
                allocator=equal_split_allocation,
            ).aggregate_gbps
            return maxmin, equal

        maxmin, equal = benchmark.pedantic(run, rounds=1, iterations=1)
        _write(
            "ablation_d6_allocator",
            format_table(
                ["allocator", "aggregate throughput (Gbps)"],
                [
                    ["max-min fair (paper)", f"{maxmin:.0f}"],
                    ["equal split", f"{equal:.0f}"],
                    ["max-min advantage", f"{maxmin / equal:.2f}x"],
                ],
                title="D6: allocation scheme vs throughput",
            ),
        )
        # Equal split can never beat max-min (it is a feasible allocation
        # dominated by progressive filling).
        assert maxmin >= equal * (1 - 1e-9)


class TestD7SatelliteCap:
    def test_bench_per_satellite_cap(self, benchmark, tp_scenario):
        """D7: a per-satellite radio cap amplifies the hybrid advantage.

        BP transit traffic crosses each relay satellite's radio front-end
        twice (up + down); hybrid transit rides the ISLs. Bounding the
        satellite's aggregate radio throughput therefore hits BP harder —
        one candidate explanation for the paper's larger full-scale
        ratios.
        """
        bp_graph = tp_scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
        hybrid_graph = tp_scenario.graph_at(0.0, ConnectivityMode.HYBRID)

        def run():
            out = {}
            for cap in (None, 40e9, 20e9):
                bp = evaluate_throughput(
                    bp_graph, tp_scenario.pairs, k=4, satellite_radio_cap_bps=cap
                ).aggregate_gbps
                hybrid = evaluate_throughput(
                    hybrid_graph, tp_scenario.pairs, k=4, satellite_radio_cap_bps=cap
                ).aggregate_gbps
                out[cap] = (bp, hybrid)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        ratios = {}
        for cap, (bp, hybrid) in results.items():
            label = "none (paper)" if cap is None else f"{cap / 1e9:.0f} Gbps"
            ratios[cap] = hybrid / bp
            rows.append([label, f"{bp:.0f}", f"{hybrid:.0f}", f"{hybrid / bp:.2f}x"])
        _write(
            "ablation_d7_satellite_cap",
            format_table(
                ["per-satellite radio cap", "BP (Gbps)", "hybrid (Gbps)", "hybrid/BP"],
                rows,
                title="D7: per-satellite radio capacity cap (k=4)",
            ),
        )
        # The cap can only reduce throughput...
        assert results[20e9][0] <= results[None][0] * (1 + 1e-9)
        assert results[20e9][1] <= results[None][1] * (1 + 1e-9)
        # ...and it widens the hybrid advantage.
        assert ratios[20e9] > ratios[None]


class TestD8BeamLimit:
    def test_bench_beam_limit(self, benchmark, tp_scenario):
        """D8: finite beam counts squeeze BP before they squeeze hybrid.

        BP needs two beams per transit bounce at every relay satellite;
        hybrid needs beams only at the endpoints. Tightening the
        per-satellite GT budget therefore widens the hybrid advantage.
        """

        def run():
            out = {}
            for beams in (None, 16, 8):
                scenario = replace(tp_scenario, max_gts_per_satellite=beams)
                bp_graph = scenario.graph_at(0.0, ConnectivityMode.BP_ONLY)
                hy_graph = scenario.graph_at(0.0, ConnectivityMode.HYBRID)
                bp = evaluate_throughput(bp_graph, scenario.pairs, k=4).aggregate_gbps
                hy = evaluate_throughput(hy_graph, scenario.pairs, k=4).aggregate_gbps
                reach = bp_graph.satellite_component_stats()["disconnected_fraction"]
                out[beams] = (bp, hy, reach)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = []
        for beams, (bp, hy, stranded) in results.items():
            label = "unbounded (paper)" if beams is None else f"{beams} beams"
            rows.append(
                [label, f"{bp:.0f}", f"{hy:.0f}", f"{hy / bp:.2f}x",
                 f"{100 * stranded:.0f}%"]
            )
        _write(
            "ablation_d8_beam_limit",
            format_table(
                ["per-satellite GT budget", "BP (Gbps)", "hybrid (Gbps)",
                 "hybrid/BP", "BP stranded sats"],
                rows,
                title="D8: finite beam counts (k=4)",
            ),
        )
        # Tighter beam budgets can only remove edges.
        assert results[8][0] <= results[None][0] * (1 + 1e-9)
        assert results[8][1] <= results[None][1] * (1 + 1e-9)


class TestD9TrafficModel:
    def test_bench_uniform_vs_gravity_traffic(self, benchmark):
        """D9: does the paper's uniform pair sampling drive its ratios?

        The gravity model concentrates traffic on large metros. Under it
        first-hop contention rises for both networks, so the hybrid/BP
        ratio should stay in the same regime — evidence the paper's
        conclusion is not an artifact of uniform sampling.
        """
        scale = ScenarioScale(
            name="traffic-model",
            num_cities=150,
            num_pairs=400,
            relay_spacing_deg=2.0,
            num_snapshots=1,
        )

        def run():
            out = {}
            for weighting in ("uniform", "gravity"):
                scenario = replace(
                    Scenario.paper_default("starlink", scale),
                    traffic_weighting=weighting,
                )
                bp = evaluate_throughput(
                    scenario.graph_at(0.0, ConnectivityMode.BP_ONLY),
                    scenario.pairs,
                    k=4,
                ).aggregate_gbps
                hybrid = evaluate_throughput(
                    scenario.graph_at(0.0, ConnectivityMode.HYBRID),
                    scenario.pairs,
                    k=4,
                ).aggregate_gbps
                out[weighting] = (bp, hybrid)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [weighting, f"{bp:.0f}", f"{hybrid:.0f}", f"{hybrid / bp:.2f}x"]
            for weighting, (bp, hybrid) in results.items()
        ]
        _write(
            "ablation_d9_traffic_model",
            format_table(
                ["traffic model", "BP (Gbps)", "hybrid (Gbps)", "hybrid/BP"],
                rows,
                title="D9: uniform (paper) vs gravity pair sampling (k=4)",
            ),
        )
        for weighting, (bp, hybrid) in results.items():
            assert hybrid > bp, weighting
        # The conclusion holds under both traffic models (same regime).
        uniform_ratio = results["uniform"][1] / results["uniform"][0]
        gravity_ratio = results["gravity"][1] / results["gravity"][0]
        assert 0.5 < gravity_ratio / uniform_ratio < 2.0
