"""Bench E10 — Fig. 10: cross-shell BP transitions (Brisbane-Tokyo).

Prints the per-snapshot single-shell vs two-shell RTT table with the
shells each best path uses. Shape assertions: adding the polar shell
(with BP-only transitions between shells) never hurts and strictly helps
at some snapshots, with winning paths genuinely spanning both shells.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.scenario import ScenarioScale
from repro.experiments import get_experiment


def _bench_scale(full_scale: bool):
    if full_scale:
        return ScenarioScale.full()
    return ScenarioScale(
        name="fig10-bench",
        num_cities=50,
        num_pairs=10,
        relay_spacing_deg=2.0,
        num_snapshots=16,
        snapshot_interval_s=2700.0,
    )


def test_bench_fig10_cross_shell(benchmark, record_result, full_scale):
    result = run_once(
        benchmark, get_experiment("fig10"), scale=_bench_scale(full_scale)
    )
    record_result(result)

    single = result.data["single_rtt_ms"]
    dual = result.data["dual_rtt_ms"]
    finite = np.isfinite(single) & np.isfinite(dual)
    assert finite.any()
    # Two shells never worse (superset network)...
    assert np.all(dual[finite] <= single[finite] + 1e-6)
    # ...and the mechanism fires: some best paths span both shells.
    assert result.headline["snapshots whose best path spans both shells"] > 0
