"""Bench E9 — Fig. 9: GSO arc-avoidance field-of-view reduction.

Prints usable-sky fractions per GT latitude for Starlink (e>=40,
22-degree separation) and Kuiper parameters. Shape assertions: the
Equator is the most restricted latitude (the paper's "only satellites in
the small shaded regions are reachable") and the restriction fades with
latitude.
"""

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig9_gso_arc(benchmark, record_result):
    result = run_once(benchmark, get_experiment("fig9"))
    record_result(result)

    by_lat = result.data["starlink_fraction_by_lat"]
    # Equator worst; high latitude essentially unrestricted.
    assert by_lat[0.0] == min(by_lat.values())
    assert by_lat[0.0] < 0.6
    assert by_lat[60.0] > 0.85
    # Monotone recovery with latitude (allowing tiny numeric wiggle).
    lats = sorted(by_lat)
    values = [by_lat[lat] for lat in lats]
    assert all(b >= a - 0.02 for a, b in zip(values, values[1:]))
