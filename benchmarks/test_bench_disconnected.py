"""Bench E6 — Section 5 text: satellites disconnected without ISLs.

Prints the per-snapshot disconnected-satellite table. Shape assertions:
a substantial fraction (paper: 25.1-31.5 % at full scale) of Starlink
satellites sit outside the giant component under BP at every snapshot,
while hybrid keeps every satellite attached.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_disconnected(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("disconnected"))
    record_result(result)

    bp = result.data["bp_fractions"]
    hybrid = result.data["hybrid_fractions"]
    assert np.all(hybrid == 0.0)
    assert np.all(bp > 0.15)
    assert np.all(bp < 0.60)
    if full_scale:
        # Paper: min 25.1 %, max 31.5 % over the day.
        assert 0.15 < bp.min() < 0.40
        assert 0.20 < bp.max() < 0.45
