"""Benchmarks for the extension experiments (Sections 2/3/6/7/8 quantified).

Not paper figures, but each regenerates a quantitative version of a
claim the paper makes in prose; shapes are asserted accordingly.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_ext_gso(benchmark, record_result):
    """Section 7: GSO arc avoidance hits BP harder than hybrid."""
    result = run_once(benchmark, get_experiment("ext-gso"))
    record_result(result)
    data = result.data
    assert data["bp"]["median_inflation_ms"] >= data["hybrid"]["median_inflation_ms"]
    assert data["bp"]["median_inflation_ms"] > 0.5  # Visible BP penalty.


def test_bench_ext_fiber(benchmark, record_result):
    """Section 8: fiber helps latency; SP routing can't harvest throughput."""
    result = run_once(benchmark, get_experiment("ext-fiber"))
    record_result(result)
    latency = result.data["latency"]
    for key, gain_ms in latency.items():
        assert gain_ms >= -1e-6, key
    for mode in ("hybrid", "bp"):
        base = result.data[(mode, None)]
        for radius in (200.0, 500.0):
            assert result.data[(mode, radius)] >= 0.85 * base


def test_bench_ext_maxflow(benchmark, record_result):
    """Section 3: the lax max-flow model inflates and flattens."""
    result = run_once(benchmark, get_experiment("ext-maxflow"))
    record_result(result)
    data = result.data
    # Inflation: the lax bound dominates the routed number clearly.
    assert data["bp"]["lax_gbps"] > 1.3 * data["bp"]["routed_gbps"]
    # Flattening: the hybrid/BP gap shrinks under the lax model.
    lax_ratio = data["hybrid"]["lax_gbps"] / data["bp"]["lax_gbps"]
    routed_ratio = data["hybrid"]["routed_gbps"] / data["bp"]["routed_gbps"]
    assert lax_ratio < routed_ratio


def test_bench_ext_modcod(benchmark, record_result):
    """Section 6 follow-through: weather shrinks BP capacity at least as
    much as hybrid capacity."""
    result = run_once(benchmark, get_experiment("ext-modcod"))
    record_result(result)
    data = result.data
    assert 0.3 < data["bp"]["retained"] <= 1.0
    assert 0.3 < data["hybrid"]["retained"] <= 1.0
    assert data["bp"]["retained"] <= data["hybrid"]["retained"] + 0.02


def test_bench_ext_dynamics(benchmark, record_result):
    """Section 2: 'a few minutes' per satellite; Section 4: paths churn."""
    result = run_once(benchmark, get_experiment("ext-dynamics"))
    record_result(result)
    data = result.data
    analytic_min = data["analytic_max_pass_s"] / 60.0
    assert 3.0 < analytic_min < 7.0
    durations = np.asarray(data["pass_durations_s"])
    assert durations.max() <= data["analytic_max_pass_s"] + 31.0
    assert np.median(durations) > 120.0


def test_bench_ext_terouting(benchmark, record_result):
    """Section 5 conjecture: load-aware routing gains throughput, costs latency."""
    result = run_once(benchmark, get_experiment("ext-terouting"))
    record_result(result)
    schemes = result.data["schemes"]
    sp = schemes["shortest path (k=1)"]
    te = schemes["load-aware (1 path)"]
    assert te["gbps"] > 1.2 * sp["gbps"]
    assert te["median_rtt_ms"] >= sp["median_rtt_ms"]
    # With 4 paths each, load-aware dominates the paper's k=4 model too.
    assert (
        schemes["load-aware (4 paths)"]["gbps"]
        >= 0.95 * schemes["edge-disjoint (k=4)"]["gbps"]
    )


def test_bench_ext_deployment(benchmark, record_result):
    """Staged deployment: ISLs matter most while the shell is sparse."""
    result = run_once(benchmark, get_experiment("ext-deployment"))
    record_result(result)
    data = result.data
    stages = sorted(data)
    sparse, full = stages[0], stages[-1]
    ratio = lambda s: (
        data[s]["hybrid"]["throughput_gbps"] / data[s]["bp"]["throughput_gbps"]
    )
    # Hybrid wins at every stage, by more when sparse.
    for stage in stages:
        assert ratio(stage) > 1.2
    assert ratio(sparse) >= ratio(full) * 0.95
    # Full deployment reaches everything the sparse one did.
    for mode in ("bp", "hybrid"):
        assert data[full][mode]["reachable"] >= data[sparse][mode]["reachable"] - 1e-9
