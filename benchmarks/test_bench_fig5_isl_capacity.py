"""Bench E5 — Fig. 5: Starlink throughput vs ISL capacity (0.5x-5x).

Prints the sweep table (plus the BP floor). Shape assertions: the sweep
is monotone non-decreasing and saturates (small 3x -> 5x gain); the
hybrid network beats BP from 1x capacity on (at full scale even at
0.5x, the paper's 2.2x point).
"""

from benchmarks.conftest import run_once
from repro.experiments import get_experiment


def test_bench_fig5_isl_capacity(benchmark, record_result, full_scale):
    result = run_once(benchmark, get_experiment("fig5"))
    record_result(result)

    sweep = result.data["sweep_gbps"]
    bp = result.data["bp_gbps"]
    ratios = sorted(sweep)
    values = [sweep[r] for r in ratios]
    # Monotone non-decreasing in ISL capacity.
    assert all(b >= a * (1 - 1e-9) for a, b in zip(values, values[1:]))
    # Saturation: beyond 3x the k-shortest-path routing can't exploit
    # much more ISL bandwidth (paper: no improvement beyond 3x).
    assert sweep[5.0] < 1.35 * sweep[3.0]
    # Hybrid wins clearly at paper capacity (5x of 20G = 100G ISLs).
    assert sweep[5.0] > 1.5 * bp

    if full_scale:
        assert sweep[0.5] > 1.5 * bp  # Paper: 2.2x even at 0.5x.
